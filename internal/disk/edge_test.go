package disk

import (
	"reflect"
	"testing"
)

// Table-driven boundary tests for the geometry maths: first/last cylinder,
// zone seams, zero-size transfers, and RAID-5 stripe edges. These are the
// coordinates the fault injector leans on (bad-sector remap redirects to
// Cylinders-1; rebuild walks per-disk blocks from 0), so the boundaries
// must hold exactly.

func TestSeekTimeEdges(t *testing.T) {
	m := MustModel(QuantumXP32150Params())
	last := m.Cylinders - 1
	cases := []struct {
		name     string
		from, to int
		want     int64 // exact expectation; -1 = only check bounds
	}{
		{"zero distance at first cylinder", 0, 0, 0},
		{"zero distance at last cylinder", last, last, 0},
		{"full stroke outward", 0, last, m.MaxSeek},
		{"full stroke inward", last, 0, m.MaxSeek},
		{"single track", 0, 1, -1},
		{"single track at inner edge", last, last - 1, -1},
	}
	for _, tc := range cases {
		got := m.SeekTime(tc.from, tc.to)
		if tc.want >= 0 {
			if got != tc.want {
				t.Errorf("%s: SeekTime(%d,%d) = %d, want %d", tc.name, tc.from, tc.to, got, tc.want)
			}
			continue
		}
		if got < m.MinSeek || got > m.MaxSeek {
			t.Errorf("%s: SeekTime(%d,%d) = %d outside [%d,%d]",
				tc.name, tc.from, tc.to, got, m.MinSeek, m.MaxSeek)
		}
	}
}

func TestSeekTimePanicsOutOfRange(t *testing.T) {
	m := MustModel(QuantumXP32150Params())
	for _, cyl := range []int{-1, m.Cylinders} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SeekTime(0, %d) did not panic", cyl)
				}
			}()
			m.SeekTime(0, cyl)
		}()
	}
}

func TestTransferTimeEdges(t *testing.T) {
	m := MustModel(QuantumXP32150Params())
	last := m.Cylinders - 1
	cases := []struct {
		name string
		cyl  int
		size int64
		want int64 // -1 = only check positivity
	}{
		{"zero size at outer edge", 0, 0, 0},
		{"zero size at inner edge", last, 0, 0},
		{"negative size", 0, -4096, 0},
		{"one full track at outer edge", 0, m.TrackCapacity(0), m.RevolutionTime()},
		{"one full track at inner edge", last, m.TrackCapacity(last), m.RevolutionTime()},
		{"one sector", 0, int64(m.SectorSize), -1},
	}
	for _, tc := range cases {
		got := m.TransferTime(tc.cyl, tc.size)
		if tc.want >= 0 {
			if got != tc.want {
				t.Errorf("%s: TransferTime(%d,%d) = %d, want %d", tc.name, tc.cyl, tc.size, got, tc.want)
			}
		} else if got <= 0 {
			t.Errorf("%s: TransferTime(%d,%d) = %d, want > 0", tc.name, tc.cyl, tc.size, got)
		}
	}
	// Inner zones hold fewer sectors, so the same bytes take longer there.
	if in, out := m.TransferTime(last, 64<<10), m.TransferTime(0, 64<<10); in <= out {
		t.Errorf("inner-zone transfer (%d) not slower than outer (%d)", in, out)
	}
}

func TestZoneOfBoundaries(t *testing.T) {
	m := MustModel(QuantumXP32150Params())
	for z, zone := range m.Zones {
		first, lastCyl := zone.FirstCyl, zone.FirstCyl+zone.Cylinders-1
		if got := m.ZoneOf(first); got != z {
			t.Errorf("ZoneOf(%d) = %d, want %d (zone start)", first, got, z)
		}
		if got := m.ZoneOf(lastCyl); got != z {
			t.Errorf("ZoneOf(%d) = %d, want %d (zone end)", lastCyl, got, z)
		}
		if z > 0 {
			if got := m.ZoneOf(first - 1); got != z-1 {
				t.Errorf("ZoneOf(%d) = %d, want %d (before seam)", first-1, got, z-1)
			}
		}
	}
	lastZone := m.Zones[len(m.Zones)-1]
	if end := lastZone.FirstCyl + lastZone.Cylinders; end != m.Cylinders {
		t.Errorf("last zone ends at %d, want %d", end, m.Cylinders)
	}
	for _, cyl := range []int{-1, m.Cylinders} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ZoneOf(%d) did not panic", cyl)
				}
			}()
			m.ZoneOf(cyl)
		}()
	}
}

func TestRAID5ParityAndLayoutAtStripeBoundaries(t *testing.T) {
	m := MustModel(QuantumXP32150Params())
	r, err := NewRAID5(5, 64<<10, m)
	if err != nil {
		t.Fatal(err)
	}
	// Left-symmetric rotation: stripe s parks parity on disk 4-(s mod 5).
	for s, want := range map[int64]int{0: 4, 1: 3, 2: 2, 3: 1, 4: 0, 5: 4} {
		if got := r.ParityDisk(s); got != want {
			t.Errorf("ParityDisk(%d) = %d, want %d", s, got, want)
		}
	}
	cases := []struct {
		name       string
		block      int64
		wantStripe int64
		wantDisk   int
	}{
		{"first block", 0, 0, 0},
		{"last lane of stripe 0", 3, 0, 3},
		{"first lane of stripe 1", 4, 1, 0},
		{"lane past parity in stripe 1", 7, 1, 4}, // parity on 3: lane 3 skips to 4
		{"first lane of stripe 4 (parity on 0)", 16, 4, 1},
		{"wraparound stripe 5", 20, 5, 0},
	}
	for _, tc := range cases {
		s, d, cyl := r.Layout(tc.block)
		if s != tc.wantStripe || d != tc.wantDisk {
			t.Errorf("%s: Layout(%d) = stripe %d disk %d, want stripe %d disk %d",
				tc.name, tc.block, s, d, tc.wantStripe, tc.wantDisk)
		}
		if d == r.ParityDisk(s) {
			t.Errorf("%s: data disk %d collides with parity of stripe %d", tc.name, d, s)
		}
		if cyl < 0 || cyl >= m.Cylinders {
			t.Errorf("%s: cylinder %d out of range", tc.name, cyl)
		}
	}
	// The very last addressable block must still map to a legal cylinder.
	lastBlock := r.MaxBlocks() - 1
	if s, d, cyl := r.Layout(lastBlock); cyl < 0 || cyl >= m.Cylinders || d == r.ParityDisk(s) {
		t.Errorf("Layout(MaxBlocks-1=%d) = stripe %d disk %d cyl %d: out of range or on parity",
			lastBlock, s, d, cyl)
	}
	if ops := r.Read(lastBlock); len(ops) != 1 {
		t.Errorf("Read(MaxBlocks-1) produced %d ops, want 1", len(ops))
	}
}

func TestRAID5DegradedOpShapes(t *testing.T) {
	m := MustModel(QuantumXP32150Params())
	r, err := NewRAID5(5, 64<<10, m)
	if err != nil {
		t.Fatal(err)
	}
	const block = 7 // stripe 1, data disk 4, parity disk 3
	s, d, cyl := r.Layout(block)
	p := r.ParityDisk(s)

	// Survivor read is untouched by an unrelated failure.
	if got, want := r.DegradedRead(block, 0), r.Read(block); !reflect.DeepEqual(got, want) {
		t.Errorf("DegradedRead survivor path = %+v, want %+v", got, want)
	}
	// Reading the failed disk's block fans out to every survivor.
	recon := r.DegradedRead(block, d)
	if len(recon) != r.Disks-1 {
		t.Fatalf("reconstruction read produced %d ops, want %d", len(recon), r.Disks-1)
	}
	seen := map[int]bool{}
	for _, op := range recon {
		if op.Disk == d || op.Write || op.Cylinder != cyl || seen[op.Disk] {
			t.Errorf("bad reconstruction op %+v (failed disk %d, cyl %d)", op, d, cyl)
		}
		seen[op.Disk] = true
	}

	// Data disk down: N-2 peer reads plus one parity write, data absorbed.
	dw := r.DegradedWrite(block, d)
	if len(dw) != r.Disks-1 {
		t.Fatalf("data-down degraded write produced %d ops, want %d", len(dw), r.Disks-1)
	}
	writes := 0
	for _, op := range dw {
		if op.Disk == d {
			t.Errorf("degraded write touched the failed disk: %+v", op)
		}
		if op.Write {
			writes++
			if op.Disk != p {
				t.Errorf("degraded write's write landed on disk %d, want parity %d", op.Disk, p)
			}
		}
	}
	if writes != 1 {
		t.Errorf("data-down degraded write has %d writes, want 1", writes)
	}

	// Parity disk down: a single unprotected data write.
	pw := r.DegradedWrite(block, p)
	if len(pw) != 1 || !pw[0].Write || pw[0].Disk != d {
		t.Errorf("parity-down degraded write = %+v, want one write on disk %d", pw, d)
	}

	// Unrelated disk down: the normal read-modify-write.
	if got, want := r.DegradedWrite(block, 0), r.Write(block); !reflect.DeepEqual(got, want) {
		t.Errorf("unrelated-failure degraded write = %+v, want %+v", got, want)
	}
}

func TestRAID5RebuildStripeEdges(t *testing.T) {
	m := MustModel(QuantumXP32150Params())
	r, err := NewRAID5(5, 64<<10, m)
	if err != nil {
		t.Fatal(err)
	}
	lastDB := m.Capacity()/r.BlockSize - 1 // last per-disk block
	for _, db := range []int64{0, lastDB} {
		for failed := 0; failed < r.Disks; failed++ {
			ops := r.RebuildStripe(db, failed)
			if len(ops) != r.Disks-1 {
				t.Fatalf("RebuildStripe(%d, %d) produced %d ops, want %d", db, failed, len(ops), r.Disks-1)
			}
			wantCyl := r.CylinderOf(db)
			for _, op := range ops {
				if op.Disk == failed || op.Write || op.Cylinder != wantCyl || op.Size != r.BlockSize {
					t.Errorf("RebuildStripe(%d, %d): bad op %+v, want read of cyl %d", db, failed, op, wantCyl)
				}
			}
		}
	}
}
