package fault

import (
	"sfcsched/internal/core"
	"sfcsched/internal/stats"
)

// Verdict is the injector's ruling on one service completion.
type Verdict int

const (
	// OK: the service succeeded.
	OK Verdict = iota
	// Retry: the service failed transiently; re-enqueue the request after
	// the returned backoff delay.
	Retry
	// Exhausted: the service failed and the retry budget is spent; the
	// request is abandoned (a drop attributable to faults).
	Exhausted
	// Lost: the disk failed while the service was in flight; the op must
	// be re-routed (arrays reconstruct) or abandoned.
	Lost
)

// Stats is a snapshot of everything the injector did during a run.
type Stats struct {
	// Transients counts injected transient faults (probabilistic and
	// scripted), including the failing attempt that exhausts a request.
	Transients uint64
	// BadSectorHits counts services that touched a not-yet-remapped bad
	// range (each hit remaps its range and retries the request).
	BadSectorHits uint64
	// Retries counts re-enqueues issued (transient backoff + remap).
	Retries uint64
	// Exhausted counts requests abandoned after MaxRetries.
	Exhausted uint64
	// Remaps counts bad ranges remapped to the spare area.
	Remaps uint64
	// RemapHits counts dispatches redirected into the spare area.
	RemapHits uint64
	// LostInFlight counts services that were in flight on the disk when
	// it failed.
	LostInFlight uint64
	// FailedAt and RebuiltAt are the disk-failure and rebuild-completion
	// times, µs (0 = never). DegradedWindow derives from them.
	FailedAt  int64
	RebuiltAt int64
}

// DegradedWindow returns the duration the array ran degraded, µs: failure
// to rebuild completion, or failure to end (makespan) when no rebuild
// finished, or 0 if no disk ever failed.
func (s Stats) DegradedWindow(makespan int64) int64 {
	if s.FailedAt == 0 {
		return 0
	}
	if s.RebuiltAt > s.FailedAt {
		return s.RebuiltAt - s.FailedAt
	}
	return makespan - s.FailedAt
}

// badState is a BadRange plus its remap status.
type badState struct {
	BadRange
	remapped bool
}

// scriptState is a scripted Event plus its one-shot status.
type scriptState struct {
	Event
	done bool
}

// Injector executes a Plan against a run. It is created per run (New) and
// is not safe for concurrent use — the engine is single-threaded.
type Injector struct {
	plan     Plan
	rng      *stats.RNG
	remapCyl int
	attempts map[*core.Request]int
	scripted []scriptState
	bad      []badState
	down     bool
	stats    Stats
	m        *Metrics
}

// New builds the injector for plan on a disk (or array of identical
// disks) with the given cylinder count. The spare area all remapped
// ranges redirect to is the innermost cylinder (cylinders-1).
func New(plan Plan, cylinders int) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if plan.MaxRetries == 0 {
		plan.MaxRetries = DefaultMaxRetries
	} else if plan.MaxRetries < 0 {
		plan.MaxRetries = 0
	}
	if plan.RetryBase == 0 {
		plan.RetryBase = DefaultRetryBase
	}
	in := &Injector{
		plan:     plan,
		rng:      stats.NewRNG(plan.Seed),
		remapCyl: cylinders - 1,
		attempts: make(map[*core.Request]int),
		m:        plan.Metrics,
	}
	if in.remapCyl < 0 {
		in.remapCyl = 0
	}
	if in.m == nil {
		in.m = DefaultMetrics
	}
	for _, ev := range plan.Scripted {
		in.scripted = append(in.scripted, scriptState{Event: ev})
	}
	for _, b := range plan.Bad {
		in.bad = append(in.bad, badState{BadRange: b})
	}
	return in, nil
}

// Plan returns the (defaulted) plan the injector runs.
func (in *Injector) Plan() Plan { return in.plan }

// Down reports whether disk d is currently failed.
func (in *Injector) Down(d int) bool {
	return in.down && in.plan.FailDisk == d
}

// DownDisk returns the currently failed disk, if any.
func (in *Injector) DownDisk() (int, bool) {
	if !in.down {
		return 0, false
	}
	return in.plan.FailDisk, true
}

// FailNow marks the planned disk failed at time now.
func (in *Injector) FailNow(now int64) {
	in.down = true
	in.stats.FailedAt = now
	in.m.DiskFailures.Inc()
	in.m.Degraded.Set(1)
}

// MarkRebuilt returns the failed disk to service at time now.
func (in *Injector) MarkRebuilt(now int64) {
	in.down = false
	in.stats.RebuiltAt = now
	in.m.Degraded.Set(0)
	in.m.DegradedWindowUs.Set(now - in.stats.FailedAt)
}

// Redirect returns the effective cylinder for a dispatch of cyl on disk
// d, following any sector remap into the spare area.
func (in *Injector) Redirect(d, cyl int) int {
	for i := range in.bad {
		b := &in.bad[i]
		if b.remapped && b.Disk == d && cyl >= b.From && cyl <= b.To {
			in.stats.RemapHits++
			in.m.RemapHits.Inc()
			return in.remapCyl
		}
	}
	return cyl
}

// Outcome rules on the service of r that just completed on disk d at
// (post-redirect) cylinder cyl. For Retry verdicts the second return
// value is the backoff delay in µs before the request re-enters its
// scheduler; it is 0 for sector remaps, which retry immediately at the
// remapped location.
//
// The decision order is deterministic: disk-down check, then bad-sector
// ranges, then scripted events, and only then — when nothing else fired —
// a single RNG draw for the probabilistic transient. One draw at most per
// completion, in completion order, keeps replays byte-identical.
func (in *Injector) Outcome(d, cyl int, r *core.Request, now int64) (Verdict, int64) {
	if in.Down(d) {
		in.stats.LostInFlight++
		delete(in.attempts, r)
		return Lost, 0
	}
	for i := range in.bad {
		b := &in.bad[i]
		if !b.remapped && b.Disk == d && cyl >= b.From && cyl <= b.To {
			b.remapped = true
			in.stats.BadSectorHits++
			in.stats.Remaps++
			in.stats.Retries++
			in.m.BadSectorHits.Inc()
			in.m.Remaps.Inc()
			in.m.Retries.Inc()
			return Retry, 0
		}
	}
	faulted := false
	for i := range in.scripted {
		ev := &in.scripted[i]
		if !ev.done && ev.Disk == d && now >= ev.Time && (ev.Cylinder < 0 || ev.Cylinder == cyl) {
			ev.done = true
			faulted = true
			break
		}
	}
	if !faulted && in.plan.TransientRate > 0 && in.rng.Float64() < in.plan.TransientRate {
		faulted = true
	}
	if !faulted {
		delete(in.attempts, r)
		return OK, 0
	}
	in.stats.Transients++
	in.m.Transients.Inc()
	a := in.attempts[r] + 1
	if a > in.plan.MaxRetries {
		delete(in.attempts, r)
		in.stats.Exhausted++
		in.m.Exhausted.Inc()
		return Exhausted, 0
	}
	in.attempts[r] = a
	in.stats.Retries++
	in.m.Retries.Inc()
	return Retry, in.plan.RetryBase << (a - 1)
}

// Attempted reports whether r has failed at least one service attempt
// and is still pending (used to attribute deadline drops to faults).
func (in *Injector) Attempted(r *core.Request) bool {
	_, ok := in.attempts[r]
	return ok
}

// Forget releases retry bookkeeping for a request that left the engine
// through a path Outcome did not see (drop, re-route).
func (in *Injector) Forget(r *core.Request) { delete(in.attempts, r) }

// Stats returns a snapshot of the injector's counters.
func (in *Injector) Stats() Stats { return in.stats }

// Metrics returns the obs sink this injector (and the run layered on it)
// reports into.
func (in *Injector) Metrics() *Metrics { return in.m }
