package fault

import (
	"strings"
	"testing"

	"sfcsched/internal/core"
	"sfcsched/internal/obs"
)

func newQuiet(t *testing.T, plan Plan, cylinders int) *Injector {
	t.Helper()
	if plan.Metrics == nil {
		plan.Metrics = &Metrics{}
	}
	in, err := New(plan, cylinders)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestPlanZero(t *testing.T) {
	var nilPlan *Plan
	cases := []struct {
		name string
		plan *Plan
		want bool
	}{
		{"nil plan", nilPlan, true},
		{"empty plan", &Plan{}, true},
		{"seed and retry policy only", &Plan{Seed: 7, MaxRetries: 5, RetryBase: 100}, true},
		{"transient rate", &Plan{TransientRate: 0.1}, false},
		{"scripted event", &Plan{Scripted: []Event{{Time: 1, Disk: 0, Cylinder: -1}}}, false},
		{"bad range", &Plan{Bad: []BadRange{{Disk: 0, From: 1, To: 2}}}, false},
		{"disk failure", &Plan{FailDisk: 1, FailAt: 5}, false},
	}
	for _, tc := range cases {
		if got := tc.plan.Zero(); got != tc.want {
			t.Errorf("%s: Zero() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name    string
		plan    Plan
		wantErr string // empty = valid
	}{
		{"zero plan", Plan{}, ""},
		{"full valid plan", Plan{
			TransientRate: 0.5,
			Scripted:      []Event{{Time: 10, Disk: 1, Cylinder: -1}},
			Bad:           []BadRange{{Disk: 0, From: 5, To: 5}},
			FailDisk:      2, FailAt: 100,
			Rebuild: true, RebuildBlocks: 4, RebuildInterval: 50,
		}, ""},
		{"rate above one", Plan{TransientRate: 1.5}, "TransientRate"},
		{"rate negative", Plan{TransientRate: -0.1}, "TransientRate"},
		{"negative retry base", Plan{RetryBase: -1}, "RetryBase"},
		{"scripted negative disk", Plan{Scripted: []Event{{Disk: -1}}}, "Scripted[0]"},
		{"scripted negative time", Plan{Scripted: []Event{{Time: -5}}}, "Scripted[0]"},
		{"bad negative disk", Plan{Bad: []BadRange{{Disk: -1, From: 0, To: 1}}}, "Bad[0]"},
		{"bad inverted range", Plan{Bad: []BadRange{{Disk: 0, From: 9, To: 3}}}, "Bad[0]"},
		{"negative fail time", Plan{FailAt: -1}, "FailAt"},
		{"fail time without disk", Plan{FailDisk: -1, FailAt: 10}, "FailDisk"},
		{"rebuild without failure", Plan{Rebuild: true, RebuildBlocks: 4}, "Rebuild"},
		{"rebuild without blocks", Plan{Rebuild: true, FailDisk: 0, FailAt: 10}, "RebuildBlocks"},
		{"negative rebuild interval", Plan{RebuildInterval: -1}, "RebuildInterval"},
	}
	for _, tc := range cases {
		err := tc.plan.Validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: Validate() = %v, want nil", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: Validate() = %v, want error mentioning %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestNewAppliesDefaults(t *testing.T) {
	in := newQuiet(t, Plan{TransientRate: 0.1}, 100)
	if p := in.Plan(); p.MaxRetries != DefaultMaxRetries || p.RetryBase != DefaultRetryBase {
		t.Errorf("defaults not applied: MaxRetries=%d RetryBase=%d", p.MaxRetries, p.RetryBase)
	}
	// Negative MaxRetries means "no retries at all".
	in = newQuiet(t, Plan{TransientRate: 1, MaxRetries: -1}, 100)
	if got := in.Plan().MaxRetries; got != 0 {
		t.Errorf("MaxRetries -1 normalized to %d, want 0", got)
	}
	r := &core.Request{ID: 1}
	if v, _ := in.Outcome(0, 10, r, 0); v != Exhausted {
		t.Errorf("no-retry plan ruled %v on a guaranteed fault, want Exhausted", v)
	}
	// A zero-cylinder geometry still yields a legal spare cylinder.
	in = newQuiet(t, Plan{Bad: []BadRange{{Disk: 0, From: 0, To: 0}}}, 0)
	if in.remapCyl != 0 {
		t.Errorf("remapCyl = %d for 0 cylinders, want 0", in.remapCyl)
	}
	if _, err := New(Plan{TransientRate: 2, Metrics: &Metrics{}}, 100); err == nil {
		t.Error("New accepted an invalid plan")
	}
}

func TestBackoffDoublesPerAttempt(t *testing.T) {
	in := newQuiet(t, Plan{TransientRate: 1, MaxRetries: 4, RetryBase: 1_000}, 100)
	r := &core.Request{ID: 1}
	want := []int64{1_000, 2_000, 4_000, 8_000}
	for i, w := range want {
		v, delay := in.Outcome(0, 10, r, int64(i))
		if v != Retry || delay != w {
			t.Fatalf("attempt %d: (%v, %d), want (Retry, %d)", i+1, v, delay, w)
		}
		if !in.Attempted(r) {
			t.Fatalf("attempt %d: Attempted(r) = false mid-retry", i+1)
		}
	}
	if v, _ := in.Outcome(0, 10, r, 99); v != Exhausted {
		t.Fatalf("attempt %d did not exhaust", len(want)+1)
	}
	if in.Attempted(r) {
		t.Error("Attempted(r) still true after exhaustion")
	}
	s := in.Stats()
	if s.Transients != 5 || s.Retries != 4 || s.Exhausted != 1 {
		t.Errorf("stats = %+v, want 5 transients, 4 retries, 1 exhausted", s)
	}
}

func TestOKClearsAttempts(t *testing.T) {
	in := newQuiet(t, Plan{Scripted: []Event{{Time: 0, Disk: 0, Cylinder: -1}}}, 100)
	r := &core.Request{ID: 1}
	if v, _ := in.Outcome(0, 10, r, 5); v != Retry {
		t.Fatal("scripted event did not fire")
	}
	if v, _ := in.Outcome(0, 10, r, 6); v != OK {
		t.Fatal("second completion not OK after the one-shot script")
	}
	if in.Attempted(r) {
		t.Error("attempt bookkeeping survived an OK completion")
	}
}

func TestScriptedEventMatchesCylinderAndTime(t *testing.T) {
	in := newQuiet(t, Plan{Scripted: []Event{{Time: 100, Disk: 1, Cylinder: 42}}}, 100)
	r := &core.Request{ID: 1}
	if v, _ := in.Outcome(1, 42, r, 50); v != OK {
		t.Error("event fired before its time")
	}
	if v, _ := in.Outcome(0, 42, r, 150); v != OK {
		t.Error("event fired on the wrong disk")
	}
	if v, _ := in.Outcome(1, 41, r, 150); v != OK {
		t.Error("event fired on the wrong cylinder")
	}
	if v, _ := in.Outcome(1, 42, r, 150); v != Retry {
		t.Error("event did not fire on its exact match")
	}
	if v, _ := in.Outcome(1, 42, &core.Request{ID: 2}, 200); v != OK {
		t.Error("one-shot event fired twice")
	}
}

func TestBadRangeRemapAndRedirect(t *testing.T) {
	in := newQuiet(t, Plan{Bad: []BadRange{{Disk: 0, From: 100, To: 200}}}, 1_000)
	// Before the first hit, dispatches are not redirected.
	if got := in.Redirect(0, 150); got != 150 {
		t.Errorf("Redirect before remap = %d, want 150", got)
	}
	r := &core.Request{ID: 1}
	if v, delay := in.Outcome(0, 150, r, 10); v != Retry || delay != 0 {
		t.Fatalf("bad-range hit ruled (%v, %d), want (Retry, 0)", v, delay)
	}
	// After the remap, the whole range redirects to the spare cylinder and
	// completions there succeed.
	if got := in.Redirect(0, 199); got != 999 {
		t.Errorf("Redirect after remap = %d, want 999", got)
	}
	if got := in.Redirect(0, 99); got != 99 {
		t.Errorf("Redirect outside the range = %d, want 99", got)
	}
	if got := in.Redirect(1, 150); got != 150 {
		t.Errorf("Redirect on another disk = %d, want 150", got)
	}
	if v, _ := in.Outcome(0, 999, r, 20); v != OK {
		t.Error("completion at the spare cylinder did not succeed")
	}
	s := in.Stats()
	if s.BadSectorHits != 1 || s.Remaps != 1 || s.RemapHits != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 remap, 1 remap hit", s)
	}
}

func TestDiskFailureLifecycle(t *testing.T) {
	in := newQuiet(t, Plan{FailDisk: 2, FailAt: 1_000}, 100)
	if in.Down(2) {
		t.Fatal("disk down before FailNow")
	}
	if _, ok := in.DownDisk(); ok {
		t.Fatal("DownDisk reported a failure before FailNow")
	}
	in.FailNow(1_000)
	if !in.Down(2) || in.Down(1) {
		t.Fatal("Down() wrong after FailNow")
	}
	if d, ok := in.DownDisk(); !ok || d != 2 {
		t.Fatalf("DownDisk = (%d, %v), want (2, true)", d, ok)
	}
	// In-flight completions on the dead disk are lost and forgotten.
	r := &core.Request{ID: 1}
	if v, _ := in.Outcome(2, 10, r, 1_100); v != Lost {
		t.Fatal("completion on the dead disk not ruled Lost")
	}
	if in.Attempted(r) {
		t.Error("lost request kept attempt bookkeeping")
	}
	// Survivors keep serving.
	if v, _ := in.Outcome(1, 10, r, 1_200); v != OK {
		t.Fatal("survivor completion not OK")
	}
	in.MarkRebuilt(5_000)
	if in.Down(2) {
		t.Fatal("disk still down after MarkRebuilt")
	}
	s := in.Stats()
	if s.FailedAt != 1_000 || s.RebuiltAt != 5_000 || s.LostInFlight != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestDegradedWindow(t *testing.T) {
	cases := []struct {
		name     string
		stats    Stats
		makespan int64
		want     int64
	}{
		{"never failed", Stats{}, 10_000, 0},
		{"failed and rebuilt", Stats{FailedAt: 2_000, RebuiltAt: 7_000}, 10_000, 5_000},
		{"failed, never rebuilt", Stats{FailedAt: 2_000}, 10_000, 8_000},
	}
	for _, tc := range cases {
		if got := tc.stats.DegradedWindow(tc.makespan); got != tc.want {
			t.Errorf("%s: DegradedWindow(%d) = %d, want %d", tc.name, tc.makespan, got, tc.want)
		}
	}
}

func TestProbabilisticTransientsDeterministic(t *testing.T) {
	run := func() []Verdict {
		in := newQuiet(t, Plan{Seed: 42, TransientRate: 0.3, MaxRetries: 1}, 100)
		var out []Verdict
		for i := 0; i < 200; i++ {
			r := &core.Request{ID: uint64(i)}
			v, _ := in.Outcome(0, i%100, r, int64(i))
			out = append(out, v)
		}
		return out
	}
	a, b := run(), run()
	var faults int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d diverged between identical injectors: %v vs %v", i, a[i], b[i])
		}
		if a[i] != OK {
			faults++
		}
	}
	// With rate 0.3 over 200 draws, some but not all must fault.
	if faults == 0 || faults == len(a) {
		t.Errorf("implausible fault count %d/200 at rate 0.3", faults)
	}
}

func TestForgetDropsBookkeeping(t *testing.T) {
	in := newQuiet(t, Plan{TransientRate: 1, MaxRetries: 3}, 100)
	r := &core.Request{ID: 1}
	if v, _ := in.Outcome(0, 10, r, 0); v != Retry {
		t.Fatal("guaranteed fault did not retry")
	}
	in.Forget(r)
	if in.Attempted(r) {
		t.Error("Attempted(r) true after Forget")
	}
}

func TestMetricsRegister(t *testing.T) {
	// Register must cover every field; a second registration under a
	// different prefix proves the names are prefix-scoped, and the same
	// prefix twice must collide.
	m := &Metrics{}
	reg := obs.NewRegistry()
	m.MustRegister(reg, "a")
	m.MustRegister(reg, "b")
	if err := m.Register(reg, "a"); err == nil {
		t.Error("re-registering the same prefix did not error")
	}
}
