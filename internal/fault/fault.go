// Package fault defines deterministic, seed-driven fault plans and the
// injector that executes them against the simulation engine: transient
// read errors (per-op probability or scripted events), latent bad-sector
// ranges with remap-on-first-touch, and whole-disk failure at a planned
// time. Recovery policies — bounded retry with exponential backoff,
// sector remap to a spare area, degraded-mode RAID-5 reconstruction and
// background rebuild — live in the sim package; this package only decides
// *what* fails *when*, from its own RNG stream, so a zero-fault plan
// leaves the engine byte-identical to a run without one.
package fault

import "fmt"

// Defaults applied by New when the corresponding Plan field is zero.
const (
	// DefaultMaxRetries bounds the retry loop for transient errors.
	DefaultMaxRetries = 3
	// DefaultRetryBase is the first retry delay, µs; each further retry
	// doubles it (exponential backoff).
	DefaultRetryBase = 5_000
)

// Event is one scripted transient fault: the first service completion on
// Disk at or after Time (matching Cylinder, or any cylinder when
// Cylinder < 0) fails once.
type Event struct {
	Time     int64
	Disk     int
	Cylinder int
}

// BadRange is a latent bad-sector stretch: the first service touching a
// cylinder in [From, To] on Disk fails and the range is remapped to the
// spare area; later dispatches into the range are redirected there.
type BadRange struct {
	Disk     int
	From, To int
}

// Plan is a deterministic fault schedule. The zero Plan injects nothing.
// Plans are pure data: the same Plan (and engine configuration) always
// replays the same faults.
type Plan struct {
	// Seed drives the injector's private RNG stream for probabilistic
	// transients. It is independent of the engine's rotational-latency
	// stream, so enabling faults never perturbs fault-free draws.
	Seed uint64
	// TransientRate is the per-service-completion probability of a
	// transient read error, in [0, 1].
	TransientRate float64
	// Scripted lists deterministic one-shot transient faults.
	Scripted []Event
	// Bad lists latent bad-sector ranges.
	Bad []BadRange

	// MaxRetries bounds retries per request before it is abandoned
	// (0 means DefaultMaxRetries; use a negative value for no retries).
	MaxRetries int
	// RetryBase is the first retry delay in µs, doubled per attempt
	// (0 means DefaultRetryBase).
	RetryBase int64

	// FailDisk fails disk FailDisk at time FailAt (µs); FailAt == 0
	// disables whole-disk failure. Array runs serve reads of the lost
	// disk by reconstruction from the survivors while it is down.
	FailDisk int
	FailAt   int64
	// Rebuild reconstructs RebuildBlocks per-disk blocks of the failed
	// disk through the foreground schedulers, pausing RebuildInterval µs
	// between blocks; when the last block completes the disk rejoins.
	Rebuild         bool
	RebuildBlocks   int
	RebuildInterval int64

	// Metrics overrides the process-wide DefaultMetrics sink.
	Metrics *Metrics
}

// Zero reports whether the plan injects no faults at all.
func (p *Plan) Zero() bool {
	return p == nil ||
		(p.TransientRate == 0 && len(p.Scripted) == 0 && len(p.Bad) == 0 && p.FailAt == 0)
}

// Validate checks the plan for internal consistency.
func (p *Plan) Validate() error {
	if p.TransientRate < 0 || p.TransientRate > 1 {
		return fmt.Errorf("fault: TransientRate %v outside [0,1]", p.TransientRate)
	}
	if p.RetryBase < 0 {
		return fmt.Errorf("fault: negative RetryBase %d", p.RetryBase)
	}
	for i, ev := range p.Scripted {
		if ev.Disk < 0 {
			return fmt.Errorf("fault: Scripted[%d] negative disk %d", i, ev.Disk)
		}
		if ev.Time < 0 {
			return fmt.Errorf("fault: Scripted[%d] negative time %d", i, ev.Time)
		}
	}
	for i, b := range p.Bad {
		if b.Disk < 0 {
			return fmt.Errorf("fault: Bad[%d] negative disk %d", i, b.Disk)
		}
		if b.From < 0 || b.To < b.From {
			return fmt.Errorf("fault: Bad[%d] invalid range [%d,%d]", i, b.From, b.To)
		}
	}
	if p.FailAt < 0 {
		return fmt.Errorf("fault: negative FailAt %d", p.FailAt)
	}
	if p.FailAt > 0 && p.FailDisk < 0 {
		return fmt.Errorf("fault: FailAt set but FailDisk %d is negative", p.FailDisk)
	}
	if p.Rebuild && p.FailAt == 0 {
		return fmt.Errorf("fault: Rebuild requires a planned disk failure (FailAt > 0)")
	}
	if p.Rebuild && p.RebuildBlocks <= 0 {
		return fmt.Errorf("fault: Rebuild requires RebuildBlocks > 0, got %d", p.RebuildBlocks)
	}
	if p.RebuildInterval < 0 {
		return fmt.Errorf("fault: negative RebuildInterval %d", p.RebuildInterval)
	}
	return nil
}
