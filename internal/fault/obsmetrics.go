package fault

import "sfcsched/internal/obs"

// Metrics aggregates fault-injection observability counters, mirroring
// core.Metrics: atomic fields, a process-wide default, and per-plan
// override via Plan.Metrics.
type Metrics struct {
	// Transients counts injected transient read errors.
	Transients obs.Counter
	// Retries counts request re-enqueues (backoff retries + remap retries).
	Retries obs.Counter
	// Exhausted counts requests abandoned after the retry budget.
	Exhausted obs.Counter
	// BadSectorHits counts first touches of latent bad ranges.
	BadSectorHits obs.Counter
	// Remaps counts bad ranges remapped to the spare area.
	Remaps obs.Counter
	// RemapHits counts dispatches redirected into the spare area.
	RemapHits obs.Counter
	// DiskFailures counts whole-disk failures.
	DiskFailures obs.Counter
	// ReconstructReads counts survivor reads issued to serve degraded
	// reads of a failed disk.
	ReconstructReads obs.Counter
	// RebuildReads counts survivor reads issued by the background rebuild.
	RebuildReads obs.Counter

	// Degraded is 1 while a disk is down, 0 otherwise.
	Degraded obs.Gauge
	// RebuildProgress is the number of per-disk blocks rebuilt so far.
	RebuildProgress obs.Gauge
	// DegradedWindowUs is the duration of the last completed degraded
	// window (failure to rebuild completion), µs.
	DegradedWindowUs obs.Gauge
}

// DefaultMetrics is the process-wide aggregate every injector reports
// into unless the plan overrides it.
var DefaultMetrics = &Metrics{}

// Register registers every field of m under prefix (e.g. "sfcsched_fault")
// in reg.
func (m *Metrics) Register(reg *obs.Registry, prefix string) error {
	type entry struct {
		name, help string
		v          any
	}
	for _, e := range []entry{
		{"transients", "injected transient read errors", &m.Transients},
		{"retries", "fault-induced request re-enqueues", &m.Retries},
		{"exhausted", "requests abandoned after the retry budget", &m.Exhausted},
		{"bad_sector_hits", "first touches of latent bad ranges", &m.BadSectorHits},
		{"remaps", "bad ranges remapped to the spare area", &m.Remaps},
		{"remap_hits", "dispatches redirected to the spare area", &m.RemapHits},
		{"disk_failures", "whole-disk failures", &m.DiskFailures},
		{"reconstruct_reads", "survivor reads serving degraded reads", &m.ReconstructReads},
		{"rebuild_reads", "survivor reads issued by the rebuild", &m.RebuildReads},
		{"degraded", "1 while a disk is down", &m.Degraded},
		{"rebuild_progress_blocks", "per-disk blocks rebuilt so far", &m.RebuildProgress},
		{"degraded_window_us", "duration of the last degraded window, microseconds", &m.DegradedWindowUs},
	} {
		if err := reg.Register(prefix+"_"+e.name, e.help, e.v); err != nil {
			return err
		}
	}
	return nil
}

// MustRegister is Register for static wiring.
func (m *Metrics) MustRegister(reg *obs.Registry, prefix string) {
	if err := m.Register(reg, prefix); err != nil {
		panic(err)
	}
}
