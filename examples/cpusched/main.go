// Cpusched: the paper's §4.1 flexibility claim in action. When there is no
// disk-utilization dimension — CPU or thread scheduling — SFC3 is simply
// skipped: stage 1 collapses the priority dimensions, stage 2 folds in the
// deadline, and the output feeds the priority queue directly.
//
// The example schedules a mixed batch of real-time jobs (interactive,
// batch, maintenance tiers x three user classes) on a simulated CPU and
// compares the Cascaded-SFC order against plain EDF on two counts: jobs
// finished by their deadline, and priority inversions suffered by the
// interactive tier.
package main

import (
	"fmt"

	"sfcsched/internal/core"
	"sfcsched/internal/sched"
	"sfcsched/internal/sfc"
	"sfcsched/internal/sim"
	"sfcsched/internal/workload"
)

func main() {
	const (
		dims   = 2 // job tier, user class
		levels = 4
		jobs   = 3000
	)

	// CPU jobs: a "cylinder" would be meaningless, so the workload carries
	// none and the simulator charges a fixed 9 ms burst per job against a
	// 10 ms mean arrival rate.
	trace := workload.Open{
		Seed:             21,
		Count:            jobs,
		MeanInterarrival: 10_000,
		Dims:             dims,
		Levels:           levels,
		DeadlineMin:      100_000,
		DeadlineMax:      400_000,
	}.MustGenerate()

	cascaded := core.MustScheduler("cascaded-cpu",
		core.EncapsulatorConfig{
			Curve1: sfc.MustNew("peano", dims, levels),
			Levels: levels,
			// Stage 2 folds in deadlines; stage 3 is skipped entirely.
			UseDeadline:     true,
			F:               1,
			DeadlineHorizon: 2 * 10_000 * jobs,
			DeadlineSpan:    400_000,
		},
		core.DispatcherConfig{Mode: core.FullyPreemptive}, 0)

	fmt.Printf("%-14s %10s %10s %14s %18s\n",
		"scheduler", "finished", "missed", "inversions", "tier-0 inversions")
	for _, s := range []sched.Scheduler{cascaded, sched.NewEDF(), sched.NewFCFS()} {
		res, err := sim.Run(sim.Config{
			Scheduler:    s,
			FixedService: 9_000,
			Options:      sim.Options{DropLate: true, Dims: dims, Levels: levels, Seed: 21},
		}, trace)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-14s %10d %10d %14d %18d\n",
			s.Name(), res.Served, res.TotalMisses(), res.TotalInversions(), res.InversionsPerDim[0])
	}
	fmt.Println("\nthe cascaded scheduler misses almost as few deadlines as EDF while")
	fmt.Println("suffering far fewer priority inversions — without any code changes,")
	fmt.Println("just by dropping the SFC3 stage from the configuration")
}
