// Emulate: the paper's §4.2 generalization claim. With the right stage
// configuration and a zero window, Cascaded-SFC reproduces classic
// schedulers exactly. This example configures three emulations — EDF,
// multi-queue priority, and C-SCAN — runs each against its reference
// implementation on the same trace, and verifies the dispatch orders match
// request for request.
package main

import (
	"fmt"
	"math"

	"sfcsched/internal/core"
	"sfcsched/internal/disk"
	"sfcsched/internal/sched"
	"sfcsched/internal/sfc"
	"sfcsched/internal/workload"
)

func main() {
	model := disk.MustModel(disk.QuantumXP32150Params())
	trace := workload.Open{
		Seed:             5,
		Count:            300,
		MeanInterarrival: 1_000,
		Dims:             1,
		Levels:           8,
		DeadlineMin:      500_000,
		DeadlineMax:      900_000,
		Cylinders:        model.Cylinders,
		Size:             64 << 10,
	}.MustGenerate()
	horizon := int64(2_000_000)

	// EDF: stage 1 ignored (single value), stage 2 with f -> infinity
	// orders purely by deadline, stage 3 skipped.
	edfEmu := core.MustScheduler("emulated-edf",
		core.EncapsulatorConfig{
			Levels:          1, // collapse priorities: deadline decides
			UseDeadline:     true,
			F:               math.Inf(1),
			DeadlineHorizon: horizon,
		},
		core.DispatcherConfig{Mode: core.FullyPreemptive}, 0)
	check("EDF", trace, edfEmu, sched.NewEDF())

	// Multi-queue: a 2-D sweep with priority on the major axis serves the
	// highest priority level first; deadline breaks ties inside a level
	// (the reference multi-queue uses scan order inside a level, so the
	// emulation compares level sequences rather than exact IDs).
	mqEmu := core.MustScheduler("emulated-multiqueue",
		core.EncapsulatorConfig{
			Levels:            8,
			UseDeadline:       true,
			Curve2:            sfc.MustNew("sweep", 2, 8),
			Curve2PriorityOnY: true,
			DeadlineHorizon:   horizon,
		},
		core.DispatcherConfig{Mode: core.FullyPreemptive}, 0)
	checkLevels("multi-queue", trace, mqEmu, sched.NewMultiQueue(8))

	// C-SCAN: stages 1-2 ignored, stage 3 with R = 1 is one pure scan.
	cscanEmu := core.MustScheduler("emulated-cscan",
		core.EncapsulatorConfig{
			Levels:      1,
			UseCylinder: true,
			R:           1,
			Cylinders:   model.Cylinders,
		},
		core.DispatcherConfig{Mode: core.FullyPreemptive}, 0)
	check("C-SCAN", trace, cscanEmu, sched.NewCSCAN())
}

// drainAll enqueues the whole trace, then drains, returning dispatch IDs.
func drainAll(trace []*core.Request, s sched.Scheduler) []uint64 {
	head := 0
	for _, r := range trace {
		s.Add(r, r.Arrival, head)
	}
	now := trace[len(trace)-1].Arrival
	var ids []uint64
	for r := s.Next(now, head); r != nil; r = s.Next(now, head) {
		ids = append(ids, r.ID)
		head = r.Cylinder
	}
	return ids
}

func check(name string, trace []*core.Request, emu, ref sched.Scheduler) {
	a := drainAll(trace, emu)
	b := drainAll(trace, ref)
	mismatches := 0
	for i := range a {
		if a[i] != b[i] {
			mismatches++
		}
	}
	verdict := "exact match"
	if mismatches > 0 {
		verdict = fmt.Sprintf("%d/%d positions differ (tie-break order)", mismatches, len(a))
	}
	fmt.Printf("%-12s emulation vs reference: %s\n", name, verdict)
}

// checkLevels compares the sequence of priority levels dispatched, which
// is the multi-queue invariant (inside a level the two implementations
// break ties differently by design).
func checkLevels(name string, trace []*core.Request, emu, ref sched.Scheduler) {
	byID := map[uint64]int{}
	for _, r := range trace {
		byID[r.ID] = r.Priorities[0]
	}
	a := drainAll(trace, emu)
	b := drainAll(trace, ref)
	mismatches := 0
	for i := range a {
		if byID[a[i]] != byID[b[i]] {
			mismatches++
		}
	}
	verdict := "level sequence matches exactly"
	if mismatches > 0 {
		verdict = fmt.Sprintf("%d/%d level positions differ", mismatches, len(a))
	}
	fmt.Printf("%-12s emulation vs reference: %s\n", name, verdict)
}
