// Videoserver: the paper's §6 scenario end to end. A non-linear editing
// server (NewsByte5-style) hosts dozens of concurrent MPEG streams with
// eight priority tiers on a RAID-5 array of Quantum XP32150 disks. Logical
// block requests flow through the RAID layer (reads hit one disk; writes
// read-modify-write the data and parity disks, write phase strictly after
// the read phase), each disk runs its own scheduler, and the report
// compares the §6 weighted loss cost of Cascaded-SFC against FCFS and EDF.
package main

import (
	"fmt"

	"sfcsched/internal/core"
	"sfcsched/internal/disk"
	"sfcsched/internal/metrics"
	"sfcsched/internal/sched"
	"sfcsched/internal/sfc"
	"sfcsched/internal/sim"
	"sfcsched/internal/workload"
)

const (
	users       = 80
	duration    = 30_000_000 // 30 s
	levels      = 8
	deadlineMin = 750_000
	deadlineMax = 1_500_000
)

func main() {
	model := disk.MustModel(disk.QuantumXP32150Params())
	array, err := disk.NewRAID5(5, 64<<10, model)
	if err != nil {
		panic(err)
	}

	// One trace of logical block requests, shared by every policy. The
	// Cylinder field carries the logical block number; the RAID layer maps
	// it to a (disk, cylinder) pair.
	blockSpace := int(array.MaxBlocks() / 4)
	logical := workload.Streams{
		Seed:        7,
		Users:       users,
		Duration:    duration,
		BitRate:     420_000 * 4, // the array serves 4 data disks in parallel
		BlockSize:   array.BlockSize,
		Levels:      levels,
		DeadlineMin: deadlineMin,
		DeadlineMax: deadlineMax,
		Cylinders:   blockSpace,
		WriteFrac:   0.2,
		Burst:       3,
	}.MustGenerate()

	fmt.Printf("non-linear editing server: %d streams, %d logical block requests over %ds\n",
		users, len(logical), duration/1_000_000)
	fmt.Printf("array: %d disks (RAID-5, %d data + rotating parity), block %d KB\n\n",
		array.Disks, array.DataDisks(), array.BlockSize>>10)

	weights := metrics.LinearWeights(levels, 11)
	fmt.Printf("%-16s %9s %9s %8s %10s %12s\n",
		"policy", "served", "missed", "seek(s)", "makespan", "weighted cost")
	for _, policy := range []string{"fcfs", "edf", "cascaded-peano"} {
		res, err := sim.RunArray(sim.ArrayConfig{
			Array:        array,
			NewScheduler: schedulerFactory(policy, model),
			Options:      sim.Options{DropLate: true, Dims: 1, Levels: levels, Seed: 1},
		}, logical)
		if err != nil {
			panic(err)
		}
		cost, err := res.Logical.WeightedLossCost(0, weights)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-16s %9d %9d %8.1f %9.1fs %12.2f\n",
			policy, res.Logical.Served, res.Logical.TotalMisses(),
			float64(res.SeekTime)/1e6, float64(res.Makespan)/1e6, cost)
	}
	fmt.Println("\nthe full cascade wins on every column at saturation: the SFC3 scan")
	fmt.Println("stage buys back seek time, which serves more blocks, while the tier")
	fmt.Println("stage points the unavoidable losses at the cheap end of the 11:1 weights")
}

// schedulerFactory builds identical per-disk schedulers for the policy.
func schedulerFactory(policy string, model *disk.Model) func(int) (sched.Scheduler, error) {
	return func(diskID int) (sched.Scheduler, error) {
		switch policy {
		case "fcfs":
			return sched.NewFCFS(), nil
		case "edf":
			return sched.NewEDF(), nil
		case "cascaded-peano":
			return core.NewScheduler(policy,
				core.EncapsulatorConfig{
					Levels:          levels,
					UseDeadline:     true,
					Curve2:          sfc.MustNew("peano", 2, levels),
					DeadlineHorizon: deadlineMax,
					DeadlineSlack:   true,
					UseCylinder:     true,
					R:               3,
					Cylinders:       model.Cylinders,
				},
				core.DispatcherConfig{Mode: core.FullyPreemptive}, 0)
		default:
			return nil, fmt.Errorf("unknown policy %q", policy)
		}
	}
}
