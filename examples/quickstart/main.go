// Quickstart: build a Cascaded-SFC disk scheduler, feed it a handful of
// multi-QoS requests, and watch the dispatch order respect priorities,
// deadlines and seek position all at once.
package main

import (
	"fmt"

	"sfcsched/internal/core"
	"sfcsched/internal/sfc"
)

func main() {
	// Requests carry two priority dimensions (say, user tier and request
	// value), a deadline, and a target cylinder.
	const (
		levels    = 8
		cylinders = 3832
	)

	// Stage 1: a Hilbert curve collapses the two priority dimensions
	// fairly. Stage 2: balance factor f = 1 weighs priority and deadline
	// equally. Stage 3: R = 3 partitions trade seek optimization against
	// priority fidelity (the paper's sweet spot).
	scheduler := core.MustScheduler("quickstart",
		core.EncapsulatorConfig{
			Curve1: sfc.MustNew("hilbert", 2, levels),
			Levels: levels,

			UseDeadline:     true,
			F:               1,
			DeadlineHorizon: 1_000_000, // 1 s, µs units
			DeadlineSpan:    1_000_000,
			DeadlineSlack:   true,

			UseCylinder: true,
			R:           3,
			Cylinders:   cylinders,
		},
		core.DispatcherConfig{
			Mode: core.ConditionallyPreemptive,
			SP:   true, // promote waiting requests that clear the window
			ER:   true, // expand-and-reset guards against starvation
		},
		0.05, // blocking window: 5% of the characterization-value space
	)

	requests := []*core.Request{
		{ID: 1, Priorities: []int{5, 5}, Deadline: 900_000, Cylinder: 3000, Size: 64 << 10},
		{ID: 2, Priorities: []int{0, 1}, Deadline: 700_000, Cylinder: 2900, Size: 64 << 10},
		{ID: 3, Priorities: []int{7, 7}, Deadline: 950_000, Cylinder: 120, Size: 64 << 10},
		{ID: 4, Priorities: []int{2, 3}, Deadline: 150_000, Cylinder: 1800, Size: 64 << 10},
		{ID: 5, Priorities: []int{0, 0}, Deadline: 500_000, Cylinder: 100, Size: 64 << 10},
	}

	now, head := int64(0), 0
	for _, r := range requests {
		scheduler.Add(r, now, head)
	}

	fmt.Println("dispatch order (lower characterization value first):")
	for r := scheduler.Next(now, head); r != nil; r = scheduler.Next(now, head) {
		fmt.Printf("  request %d  priorities=%v  deadline=%dms  cylinder=%d\n",
			r.ID, r.Priorities, r.Deadline/1000, r.Cylinder)
		head = r.Cylinder
	}

	stats := scheduler.Dispatcher().Stats()
	fmt.Printf("\npolicy events: %d preemptions, %d promotions, %d batch swaps\n",
		stats.Preemptions, stats.Promotions, stats.Swaps)
}
