module sfcsched

go 1.22
