# Developer entry points; CI runs the same targets.

.PHONY: all vet build test race cover bench bench-smoke micro

all: vet build test

# Statement-coverage floor over ./internal/..., measured before PR 5
# landed. Raise it when coverage rises; never lower it to merge.
COVER_FLOOR := 91.4

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

# Mirrors the CI race job: internal packages carry the concurrent paths
# (ShardedScheduler, obs counters) and the golden differential suite.
race:
	go test -race ./internal/...

# Mirrors the CI coverage job: fail when total statement coverage over the
# internal packages drops below the floor.
cover:
	go test -coverprofile=cover.out ./internal/...
	@total=$$(go tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { \
		if (t + 0 < f + 0) { printf "coverage %.1f%% is below the %.1f%% floor\n", t, f; exit 1 } \
		printf "coverage %.1f%% (floor %.1f%%)\n", t, f }'

# Full benchmark suite with allocation columns.
bench:
	go test -run '^$$' -bench . -benchmem ./...

# One iteration of every benchmark: catches bit-rot without the cost.
bench-smoke:
	go test -run '^$$' -bench . -benchtime 1x ./...

# Hot-path micro-costs (curve index, value cascade, dispatch cycle).
micro:
	go run ./cmd/schedbench -exp micro
