# Developer entry points; CI runs the same targets.

.PHONY: all vet build test race bench bench-smoke micro

all: vet build test

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

# Mirrors the CI race job: internal packages carry the concurrent paths
# (ShardedScheduler, obs counters) and the golden differential suite.
race:
	go test -race ./internal/...

# Full benchmark suite with allocation columns.
bench:
	go test -run '^$$' -bench . -benchmem ./...

# One iteration of every benchmark: catches bit-rot without the cost.
bench-smoke:
	go test -run '^$$' -bench . -benchtime 1x ./...

# Hot-path micro-costs (curve index, value cascade, dispatch cycle).
micro:
	go run ./cmd/schedbench -exp micro
